package diode

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"diode/internal/apps"
	"diode/internal/bv"
	"diode/internal/core"
	"diode/internal/dispatch"
	"diode/internal/harness"
	"diode/internal/interp"
	"diode/internal/lang"
	"diode/internal/solver"
)

// This file is the benchmark harness that regenerates every data artifact in
// the paper's evaluation section (§5). The paper's figures (1–8) are
// architecture/semantics/algorithm diagrams implemented as code (see
// DESIGN.md); its measured data all lives in Table 1 and Table 2, whose
// columns the benchmarks below reproduce:
//
//	BenchmarkTable1                 – Table 1: per-app site classification
//	BenchmarkTable2Discovery        – Table 2 cols 1–6: per-site hunts,
//	                                  error types, times, enforced X/Y
//	BenchmarkSuccessRateTargetOnly  – Table 2 col 7 (§5.5): 200 inputs from
//	                                  the target constraint alone
//	BenchmarkSuccessRateEnforced    – Table 2 col 8 (§5.6): 200 inputs from
//	                                  target ∧ enforced constraints
//	BenchmarkSamePath               – §5.4: same-path constraint verdicts
//
// plus the DESIGN.md ablations:
//
//	BenchmarkAblationFullPath       – enforce the whole seed path up front
//	BenchmarkAblationNoCompress     – skip Figure 8 branch compression
//	BenchmarkAblationNoRelevance    – keep irrelevant branches in φ
//	BenchmarkAblationSolverMode     – bit-blast-only vs hybrid solving
//
// Run everything with:  go test -bench=. -benchmem
// Each benchmark reports domain-specific metrics via b.ReportMetric.

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes := harness.Evaluate(harness.Config{Seed: int64(i + 1)}, apps.Paper())
		var exposed, unsat, prevented int
		for _, o := range outcomes {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
			for _, sr := range o.Result.Sites {
				switch sr.Verdict.Class() {
				case apps.ClassExposed:
					exposed++
				case apps.ClassUnsat:
					unsat++
				default:
					prevented++
				}
			}
		}
		b.ReportMetric(float64(exposed), "exposed")
		b.ReportMetric(float64(unsat), "unsat")
		b.ReportMetric(float64(prevented), "prevented")
		if exposed != 14 || unsat != 17 || prevented != 9 {
			b.Fatalf("classification drifted: %d/%d/%d, paper: 14/17/9", exposed, unsat, prevented)
		}
	}
}

func BenchmarkTable2Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes := harness.Evaluate(harness.Config{Seed: int64(i + 1)}, apps.Paper())
		var totalEnforced, exposedSites int
		for _, o := range outcomes {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
			for _, sr := range o.Result.Sites {
				if sr.Verdict == core.VerdictExposed {
					exposedSites++
					totalEnforced += sr.EnforcedCount()
				}
			}
		}
		b.ReportMetric(float64(exposedSites), "overflows")
		b.ReportMetric(float64(totalEnforced)/float64(exposedSites), "avg-enforced")
	}
}

// successRates runs the §5.5 / §5.6 experiment for every exposed site of one
// application and reports the aggregate hit rates.
func successRates(b *testing.B, short string, n int) {
	app, err := apps.ByName(short)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eng := core.New(app, core.Options{Seed: int64(i + 1)})
		res, err := eng.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		var hits, total int
		for _, sr := range res.Sites {
			if sr.Verdict != core.VerdictExposed {
				continue
			}
			h, t := eng.SuccessRate(sr.Target, sr.Target.Beta, n)
			hits += h
			total += t
		}
		if total > 0 {
			b.ReportMetric(float64(hits)/float64(total)*100, "target-only-%")
		}
	}
}

func BenchmarkSuccessRateTargetOnly(b *testing.B) {
	for _, short := range []string{"vlc", "swfplay", "cwebp", "imagemagick", "dillo", "gifview", "tifthumb"} {
		b.Run(short, func(b *testing.B) { successRates(b, short, 200) })
	}
}

func BenchmarkSuccessRateEnforced(b *testing.B) {
	// Only the enforcement-requiring sites have a §5.6 column.
	for i := 0; i < b.N; i++ {
		for _, short := range []string{"dillo", "vlc"} {
			app, err := apps.ByName(short)
			if err != nil {
				b.Fatal(err)
			}
			eng := core.New(app, core.Options{Seed: int64(i + 1)})
			res, err := eng.RunAll()
			if err != nil {
				b.Fatal(err)
			}
			for _, sr := range res.Sites {
				if sr.Verdict != core.VerdictExposed || sr.EnforcedCount() == 0 {
					continue
				}
				h, t := eng.SuccessRate(sr.Target, core.EnforcedConstraint(sr), 200)
				if t > 0 {
					b.ReportMetric(float64(h)/float64(t)*100, short+"-enforced-%")
				}
			}
		}
	}
}

// BenchmarkTableExtended regenerates the extended-suite table and pins its
// classification: 4 exposed, 3 unsatisfiable, 3 prevented across GIFView and
// TIFThumb, with the screen-buffer site requiring at least two enforced
// branches (the Figure 7 loop, not the initial β sample, cracks the new
// formats).
func BenchmarkTableExtended(b *testing.B) {
	for i := 0; i < b.N; i++ {
		outcomes := harness.Evaluate(harness.Config{Seed: int64(i + 1)}, apps.Extended())
		var exposed, unsat, prevented, screenEnforced int
		for _, o := range outcomes {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
			for _, sr := range o.Result.Sites {
				switch sr.Verdict.Class() {
				case apps.ClassExposed:
					exposed++
				case apps.ClassUnsat:
					unsat++
				default:
					prevented++
				}
				if sr.Target.Site == "gifview:gif.c@155" {
					screenEnforced = sr.EnforcedCount()
				}
			}
		}
		b.ReportMetric(float64(exposed), "exposed")
		b.ReportMetric(float64(unsat), "unsat")
		b.ReportMetric(float64(prevented), "prevented")
		b.ReportMetric(float64(screenEnforced), "screen-enforced")
		if exposed != 4 || unsat != 3 || prevented != 3 {
			b.Fatalf("extended classification drifted: %d/%d/%d, want 4/3/3", exposed, unsat, prevented)
		}
		if screenEnforced < 2 {
			b.Fatalf("gifview:gif.c@155 exposed after %d enforced branches, want >= 2", screenEnforced)
		}
	}
}

func BenchmarkSamePath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sat := 0
		for _, app := range apps.All() {
			eng := core.New(app, core.Options{Seed: int64(i + 1)})
			targets, err := eng.Analyze()
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range targets {
				ps, ok := app.PaperFor(t.Site)
				if !ok || ps.Class != apps.ClassExposed {
					continue
				}
				if eng.SamePathSatisfiable(t) == solver.Sat {
					sat++
				}
			}
		}
		b.ReportMetric(float64(sat), "samepath-sat")
		if sat != 2 {
			b.Fatalf("same-path satisfiable for %d sites, paper: 2", sat)
		}
	}
}

// BenchmarkAblationFullPath measures the alternative the paper argues
// against (§5.4): requiring the overflow on the seed's exact path. Counts
// how many of the 14 exposed sites remain findable.
func BenchmarkAblationFullPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findable := 0
		for _, app := range apps.All() {
			eng := core.New(app, core.Options{Seed: int64(i + 1)})
			targets, err := eng.Analyze()
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range targets {
				ps, ok := app.PaperFor(t.Site)
				if !ok || ps.Class != apps.ClassExposed {
					continue
				}
				if eng.SamePathSatisfiable(t) == solver.Sat {
					findable++
				}
			}
		}
		b.ReportMetric(float64(findable), "fullpath-findable")
		b.ReportMetric(14, "goal-directed-findable")
	}
}

// ablationSweep runs the paper suite (the ablations quantify the paper's
// design claims, whose baselines are the 14 exposed sites of Table 1).
func ablationSweep(b *testing.B, opts core.Options) {
	exposed := 0
	for _, app := range apps.Paper() {
		eng := core.New(app, opts)
		res, err := eng.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range res.Sites {
			if sr.Verdict == core.VerdictExposed {
				exposed++
			}
		}
	}
	b.ReportMetric(float64(exposed), "exposed")
}

func BenchmarkAblationNoCompress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationSweep(b, core.Options{Seed: int64(i + 1), DisableCompression: true})
	}
}

func BenchmarkAblationNoRelevance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationSweep(b, core.Options{Seed: int64(i + 1), DisableRelevanceFilter: true})
	}
}

func BenchmarkAblationSolverMode(b *testing.B) {
	modes := []struct {
		name string
		mode solver.Mode
	}{
		{"hybrid", solver.ModeHybrid},
		{"sat-only", solver.ModeSATOnly},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ablationSweep(b, core.Options{Seed: int64(i + 1), SolverMode: m.mode})
			}
		})
	}
}

// BenchmarkAnalysisOnly isolates stages 1–3 (taint + symbolic extraction),
// the per-application "(A)" component of Table 2's time column.
func BenchmarkAnalysisOnly(b *testing.B) {
	for _, app := range apps.All() {
		b.Run(app.Short, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := core.New(app, core.Options{Seed: 1})
				if _, err := eng.Analyze(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Example-style sanity for the benchmark harness itself: the full registry
// (paper + extended) sweeps and renders both table families.
func TestBenchHarnessSmoke(t *testing.T) {
	outcomes := harness.EvaluateAll(harness.Config{Seed: 1})
	if len(outcomes) != len(Applications()) {
		t.Fatalf("%d outcomes, want %d", len(outcomes), len(Applications()))
	}
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	recs := harness.Records(outcomes)
	t1 := Table1(PaperApplications(), recs)
	if len(t1) == 0 {
		t.Fatal("empty Table 1")
	}
	fmt.Println(t1)
	te := TableExtended(ExtendedApplications(), recs)
	if len(te) == 0 {
		t.Fatal("empty extended table")
	}
	fmt.Println(te)
}

// BenchmarkHuntIncremental measures what the incremental solving sessions
// buy: the same hunts run once with one-shot solving (every enforcement
// iteration rebuilds φ′∧β on a fresh CDCL engine and blaster) and once with
// sessions (one persistent engine per hunt, only the newly conjoined branch
// constraint lowered, learned clauses retained). Dillo is the
// enforcement-heavy application — png.c@203 alone conjoins several sanity
// checks whose sparse solutions push every iteration into the CDCL phase —
// so it is where the session machinery works hardest. Verdicts are checked
// equal between the two paths before the speedup is reported.
func BenchmarkHuntIncremental(b *testing.B) {
	app, err := apps.ByName("dillo")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		mode solver.Mode
	}{
		// sat-only isolates the solver path the sessions optimize: every
		// solve bit-blasts and runs CDCL, so the win is the re-lowering and
		// re-learning the one-shot path repeats. hybrid is the end-to-end
		// default, where concrete search and guest execution dilute it.
		{"sat-only", solver.ModeSATOnly},
		{"hybrid", solver.ModeHybrid},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seed := int64(i + 1)

				t0 := time.Now()
				oneShot, err := core.New(app, core.Options{
					Seed: seed, SolverMode: m.mode, OneShotSolver: true,
				}).RunAll()
				if err != nil {
					b.Fatal(err)
				}
				oneShotTime := time.Since(t0)

				t0 = time.Now()
				eng := core.New(app, core.Options{Seed: seed, SolverMode: m.mode})
				incremental, err := eng.RunAll()
				if err != nil {
					b.Fatal(err)
				}
				incrementalTime := time.Since(t0)

				for j, sr := range oneShot.Sites {
					if ir := incremental.Sites[j]; sr.Verdict != ir.Verdict {
						b.Fatalf("%s: session verdict %v != one-shot %v",
							sr.Target.Site, ir.Verdict, sr.Verdict)
					}
				}
				st := eng.SolverStats()
				b.ReportMetric(oneShotTime.Seconds()/incrementalTime.Seconds(), "speedup")
				b.ReportMetric(float64(st.ClausesReused), "clauses-reused")
				b.ReportMetric(float64(st.ModelCacheHits), "model-cache-hits")
			}
		})
	}
}

// BenchmarkSuccessRateBatched measures what the compiled execution layer
// buys the §5.5/§5.6 experiments (the workload of the two SuccessRate
// benchmarks above): every exposed site's target-only experiment plus every
// enforcement site's enforced experiment, on the one-shot path
// (core.Options.OneShotExecution — a fresh tree-walking interpreter with
// string-keyed environments per sampled input) versus the batched path (the
// application compiled once, every input executed on one reused slot-indexed
// machine).
//
// Setup (untimed) runs the hunts, samples every experiment's models once and
// generates the input corpus — sampling and generation are solver/format
// work identical on both paths, so the corpus is shared by construction —
// and then verifies row parity through the real Hunter.SuccessRate API: the
// hit/total counts (the table-row rates) from identically seeded one-shot
// and batched hunters must be byte-identical. The timed region executes the
// corpus on each path. Reported metrics:
//
//	exec-speedup — one-shot / batched time over the guest executions, the
//	               component the compiled layer optimizes (the ≥2x claim)
//	e2e-speedup  — same ratio with each path's full SuccessRate calls
//	               (sampling included; enforced-constraint model enumeration
//	               is shared CDCL work, which dilutes this number)
//	hits, total  — aggregate rates, equal on both paths
func BenchmarkSuccessRateBatched(b *testing.B) {
	type item struct {
		app   *apps.App
		site  string
		input []byte
	}
	var (
		corpus       []item
		machines     = map[*apps.App]*interp.Machine{}
		e2eOne, e2eB time.Duration
		hits         int
	)
	for _, short := range []string{"dillo", "vlc", "gifview", "tifthumb"} {
		app, err := apps.ByName(short)
		if err != nil {
			b.Fatal(err)
		}
		machines[app] = interp.NewMachine(app.Compiled())
		res, err := core.NewScheduler(app, core.Options{Seed: 1, Parallelism: runtime.GOMAXPROCS(0)}).RunAll()
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range res.Sites {
			if sr.Verdict != core.VerdictExposed {
				continue
			}
			constraints := []*bv.Bool{sr.Target.Beta}
			if sr.EnforcedCount() > 0 {
				constraints = append(constraints, core.EnforcedConstraint(sr))
			}
			for _, constraint := range constraints {
				siteOpts := core.Options{Seed: 1}.ForSite(sr.Target.Site)
				oneOpts := siteOpts
				oneOpts.OneShotExecution = true

				// Row parity through the real experiment path, also timed
				// for the end-to-end metric.
				t0 := time.Now()
				oh, ot := core.NewHunter(app, oneOpts).SuccessRate(sr.Target, constraint, 200)
				e2eOne += time.Since(t0)
				t0 = time.Now()
				bh, bt := core.NewHunter(app, siteOpts).SuccessRate(sr.Target, constraint, 200)
				e2eB += time.Since(t0)
				if oh != bh || ot != bt {
					b.Fatalf("%s: batched rate %d/%d != one-shot %d/%d", sr.Target.Site, bh, bt, oh, ot)
				}
				hits += bh

				// Shared corpus: the same models both hunters sampled.
				sol := solver.New(solver.Options{Seed: siteOpts.Seed})
				gen := app.Format.Generator()
				for _, m := range sol.NewSession(constraint).SampleModels(200) {
					input, err := gen.Generate(app.Format.Seed, m)
					if err != nil {
						continue
					}
					corpus = append(corpus, item{app: app, site: sr.Target.Site, input: input})
				}
			}
		}
	}

	triggered := func(out *interp.Outcome, site string) bool {
		for _, ev := range out.Allocs {
			if ev.Site == site && ev.Wrapped {
				return true
			}
		}
		return false
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		oneHits := 0
		for _, it := range corpus {
			if triggered(interp.RunTree(it.app.Program, it.input, interp.Options{}), it.site) {
				oneHits++
			}
		}
		oneShot := time.Since(t0)

		t0 = time.Now()
		batHits := 0
		for _, it := range corpus {
			m := machines[it.app]
			m.Reset(it.input, interp.Options{})
			if triggered(m.Run(), it.site) {
				batHits++
			}
		}
		batched := time.Since(t0)

		if oneHits != batHits {
			b.Fatalf("corpus hits diverge: one-shot %d != batched %d", oneHits, batHits)
		}
		b.ReportMetric(oneShot.Seconds()/batched.Seconds(), "exec-speedup")
		b.ReportMetric(e2eOne.Seconds()/e2eB.Seconds(), "e2e-speedup")
		b.ReportMetric(float64(hits), "hits")
		b.ReportMetric(float64(len(corpus)), "total")
	}
}

// BenchmarkDispatchLocal measures what the job-based dispatch layer costs
// over driving the same machinery directly: the full dillo site sweep hunted
// by a Scheduler on pre-analyzed targets versus the identical batch planned
// as hunt jobs and run through the Local backend. The backend's JobCache is
// pinned to NoResults so every iteration really executes the hunts — with
// result caching on, the steady state would measure cache lookups instead
// (that speedup is BenchmarkSweepWarmVsCold's subject). Analysis memoization
// stays: the first iteration derives the analysis once, the steady state
// streams results over a channel with a memoized-analysis lookup per job, as
// in the harness path. Verdict parity is asserted each iteration. Reported
// metrics:
//
//	dispatch-vs-direct — wall-clock ratio (≈1 means the job layer is free)
//	delta-us/job       — signed per-job wall-clock delta, dispatch minus
//	                     direct: the cost of job records, the analysis cache
//	                     lookup and the result stream. Near zero in the
//	                     cache-warm steady state; negative values are
//	                     scheduling noise (the dispatch run happened to win
//	                     the ratio race), not real savings
func BenchmarkDispatchLocal(b *testing.B) {
	app, err := apps.ByName("dillo")
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	opts := core.Options{Seed: 1, Parallelism: workers}
	targets, err := core.NewAnalyzer(app, opts).Analyze()
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]dispatch.Job, len(targets))
	for i, t := range targets {
		jobs[i] = dispatch.Job{
			ID: i, Kind: dispatch.KindHunt, App: app.Short, Site: t.Site,
			Seed: core.SiteSeed(opts.Seed, t.Site),
		}
	}
	backend := &dispatch.Local{
		Workers: workers,
		Cache:   dispatch.NewJobCache(dispatch.CacheConfig{NoResults: true}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		direct := core.NewScheduler(app, opts).HuntAll(targets)
		directTime := time.Since(t0)

		t0 = time.Now()
		results, err := dispatch.Collect(context.Background(), backend, jobs)
		dispatchTime := time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}

		byID := make(map[int]dispatch.Result, len(results))
		for _, r := range results {
			if r.Err != "" {
				b.Fatalf("job %d failed: %s", r.JobID, r.Err)
			}
			byID[r.JobID] = r
		}
		for j, sr := range direct {
			if got := byID[j]; got.Verdict != sr.Verdict.String() {
				b.Fatalf("%s: dispatched verdict %s != direct %v", sr.Target.Site, got.Verdict, sr.Verdict)
			}
		}
		b.ReportMetric(dispatchTime.Seconds()/directTime.Seconds(), "dispatch-vs-direct")
		b.ReportMetric((dispatchTime-directTime).Seconds()*1e6/float64(len(jobs)), "delta-us/job")
	}
}

// benchNormalize zeroes the measured wall-clock fields so cold and warm
// sweeps compare on content (a cached result replays its stored DiscoveryMS,
// but the per-sweep AnalysisMS is always measured fresh).
func benchNormalize(recs []*AppRecord) []*AppRecord {
	out := make([]*AppRecord, len(recs))
	for i, r := range recs {
		c := *r
		c.AnalysisMS = 0
		c.Sites = append([]SiteRecord(nil), r.Sites...)
		for j := range c.Sites {
			c.Sites[j].DiscoveryMS = 0
		}
		out[i] = &c
	}
	return out
}

// BenchmarkSweepWarmVsCold measures what the content-addressed result cache
// buys on repeated sweeps: the full suite — Table 1 classification, Table 2
// experiments, same-path, extended apps — run cold on a fresh JobCache and
// then warm on the same cache. The warm sweep must perform zero executions
// and zero Analyzer runs (asserted via the cache counters) and render Table
// 1, Table 2 and the extended table byte-identical to the cold run. Reported
// metrics:
//
//	cold-vs-warm — wall-clock ratio (how many times faster the warm sweep is)
//	warm-ms      — absolute warm sweep time (the floor repeated sweeps pay)
func BenchmarkSweepWarmVsCold(b *testing.B) {
	list := apps.All()
	for i := 0; i < b.N; i++ {
		jc := dispatch.NewJobCache(dispatch.CacheConfig{})
		cfg := harness.Config{Seed: int64(i + 1), SampleN: 10, SamePath: true, Cache: jc}

		t0 := time.Now()
		coldOut := harness.Evaluate(cfg, list)
		cold := time.Since(t0)
		for _, o := range coldOut {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
		coldStats := jc.Stats()

		t0 = time.Now()
		warmOut := harness.Evaluate(cfg, list)
		warm := time.Since(t0)
		for _, o := range warmOut {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
		warmStats := jc.Stats()
		if got := warmStats.Misses - coldStats.Misses; got != 0 {
			b.Fatalf("warm sweep executed %d jobs, want 0", got)
		}
		if got := warmStats.AnalysisRuns - coldStats.AnalysisRuns; got != 0 {
			b.Fatalf("warm sweep ran the Analyzer %d times, want 0", got)
		}

		coldRecs := benchNormalize(harness.Records(coldOut))
		warmRecs := benchNormalize(harness.Records(warmOut))
		if a, g := Table1(apps.Paper(), coldRecs), Table1(apps.Paper(), warmRecs); a != g {
			b.Fatalf("warm Table 1 differs from cold:\n%s\nvs\n%s", a, g)
		}
		if a, g := Table2(apps.Paper(), coldRecs), Table2(apps.Paper(), warmRecs); a != g {
			b.Fatalf("warm Table 2 differs from cold:\n%s\nvs\n%s", a, g)
		}
		if a, g := TableExtended(apps.Extended(), coldRecs), TableExtended(apps.Extended(), warmRecs); a != g {
			b.Fatalf("warm extended table differs from cold:\n%s\nvs\n%s", a, g)
		}

		b.ReportMetric(cold.Seconds()/warm.Seconds(), "cold-vs-warm")
		b.ReportMetric(warm.Seconds()*1e3, "warm-ms")
	}
}

// BenchmarkRunAllParallel measures the scheduler's wall-clock speedup: the
// full five-application sweep hunted sequentially (one worker, sequential
// site hunts) versus fully fanned out (apps × sites concurrent). Per-site
// seed derivation guarantees both schedules produce identical verdicts, so
// the speedup metric compares equal work.
func BenchmarkRunAllParallel(b *testing.B) {
	// Floor the pool at 2 so the concurrent scheduler path runs even on a
	// single-core machine (where the speedup metric will sit near 1).
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)

		t0 := time.Now()
		seqOut := harness.EvaluateAll(harness.Config{Seed: seed, Workers: 1})
		seq := time.Since(t0)

		t0 = time.Now()
		parOut := harness.EvaluateAll(harness.Config{Seed: seed, Parallelism: workers})
		par := time.Since(t0)

		for j := range seqOut {
			if seqOut[j].Err != nil || parOut[j].Err != nil {
				b.Fatal(seqOut[j].Err, parOut[j].Err)
			}
			for k, sr := range seqOut[j].Result.Sites {
				if pr := parOut[j].Result.Sites[k]; sr.Verdict != pr.Verdict {
					b.Fatalf("%s: parallel verdict %v != sequential %v", sr.Target.Site, pr.Verdict, sr.Verdict)
				}
			}
		}
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
		b.ReportMetric(float64(workers), "workers")
	}
}

// BenchmarkSampleModels measures what restart-based sampling buys the
// §5.5/§5.6 model-enumeration workload: the real experiment constraints
// (every exposed site's target constraint, plus the target∧enforced
// conjunction where enforcement found one) are each sampled for 200 models
// under the default restart strategy and under the blocking-clause ablation
// (solver.SamplingBlocking), on identically seeded solvers. ModeSATOnly
// forces every draw through the CDCL engine — the component the strategies
// differ in; the hybrid default's concrete phase would serve most draws
// before either strategy runs. Model counts are checked equal between the
// strategies before the speedup is reported (both certify exhaustion, so on
// exhaustible constraints the counts must agree exactly).
func BenchmarkSampleModels(b *testing.B) {
	type job struct {
		f    *bv.Bool
		seed int64
	}
	var jobs []job
	for _, short := range []string{"dillo", "vlc", "gifview"} {
		app, err := apps.ByName(short)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.NewScheduler(app, core.Options{Seed: 1, Parallelism: runtime.GOMAXPROCS(0)}).RunAll()
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range res.Sites {
			if sr.Verdict != core.VerdictExposed {
				continue
			}
			seed := core.Options{Seed: 1}.ForSite(sr.Target.Site).Seed
			jobs = append(jobs, job{sr.Target.Beta, seed})
			if sr.EnforcedCount() > 0 {
				jobs = append(jobs, job{core.EnforcedConstraint(sr), seed})
			}
		}
	}
	const k = 200
	sample := func(strategy solver.Sampling) (time.Duration, []int) {
		t0 := time.Now()
		counts := make([]int, len(jobs))
		for i, j := range jobs {
			s := solver.New(solver.Options{Seed: j.seed, Mode: solver.ModeSATOnly, Sampling: strategy})
			counts[i] = len(s.SampleModels(j.f, k))
		}
		return time.Since(t0), counts
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blockingTime, blockingCounts := sample(solver.SamplingBlocking)
		restartTime, restartCounts := sample(solver.SamplingRestart)
		models := 0
		for j := range jobs {
			if restartCounts[j] != blockingCounts[j] {
				b.Fatalf("constraint %d: restart sampled %d models, blocking %d",
					j, restartCounts[j], blockingCounts[j])
			}
			models += restartCounts[j]
		}
		b.ReportMetric(blockingTime.Seconds()/restartTime.Seconds(), "speedup")
		b.ReportMetric(float64(len(jobs)), "constraints")
		b.ReportMetric(float64(models), "models")
	}
}

// BenchmarkPortfolioSolve measures portfolio racing on solves hard enough to
// outlive the probe budget: 16-bit semiprime factoring (the hardest formula
// shape the bit-blaster produces — no propagation shortcut reveals the
// factors) under a conflict budget the single engine usually cannot meet.
// Reported metrics are the decided fraction under each configuration — the
// portfolio's value is turning budget-bound Unknowns into answers, not
// making easy solves faster — and the volume of learnt clauses folded back.
func BenchmarkPortfolioSolve(b *testing.B) {
	semiprimes := []uint64{
		1021 * 1019, 1031 * 1033, 1049 * 1051, 1061 * 1063,
		1091 * 1087, 1097 * 1093, 1109 * 1103, 1123 * 1117,
	}
	formula := func(i int, c uint64) *bv.Bool {
		x := bv.Var(16, fmt.Sprintf("bp_x%d", i))
		y := bv.Var(16, fmt.Sprintf("bp_y%d", i))
		prod := bv.Mul(bv.ZExt(32, x), bv.ZExt(32, y))
		return bv.AndB(bv.Eq(prod, bv.Const(32, c)),
			bv.AndB(bv.Ugt(x, bv.Const(16, 1)), bv.Ugt(y, bv.Const(16, 1))))
	}
	run := func(portfolio int) (time.Duration, int, solver.Stats) {
		t0 := time.Now()
		decided := 0
		agg := solver.Stats{}
		for i, c := range semiprimes {
			s := solver.New(solver.Options{
				Seed: int64(i + 1), Mode: solver.ModeSATOnly,
				MaxConflicts: 1000, Portfolio: portfolio,
			})
			if _, v := s.Solve(formula(i, c)); v != solver.Unknown {
				decided++
			}
			agg.Add(s.Snapshot())
		}
		return time.Since(t0), decided, agg
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		singleTime, singleDecided, _ := run(0)
		portfolioTime, portfolioDecided, st := run(4)
		b.ReportMetric(float64(singleDecided)/float64(len(semiprimes)), "decided-single")
		b.ReportMetric(float64(portfolioDecided)/float64(len(semiprimes)), "decided-portfolio")
		b.ReportMetric(float64(st.PortfolioRaces), "races")
		b.ReportMetric(float64(st.LearntsShared), "learnts-shared")
		b.ReportMetric(portfolioTime.Seconds()/singleTime.Seconds(), "time-ratio")
	}
}

// BenchmarkMachineSteps measures raw dispatch-loop throughput: a pure
// arithmetic fuel-burner guest (no memory traffic, no input reads) run to
// fuel exhaustion on one reused Machine. steps/sec is the interpreter's
// step-retire rate, and allocs/op must be zero — the warm plain-mode hot
// path performs no allocation (audit with -benchmem).
func BenchmarkMachineSteps(b *testing.B) {
	prog := lang.NewProgram("stepburner")
	prog.AddFunc(lang.Fn("main", nil,
		lang.Let("i", lang.U32(0)),
		lang.Let("x", lang.U32(1)),
		lang.Loop("burn", lang.Ult(lang.V("i"), lang.U32(0xFFFFFFFF)),
			lang.Let("x", lang.Add(lang.V("x"), lang.V("i"))),
			lang.Let("i", lang.Add(lang.V("i"), lang.U32(1))),
		),
	))
	if err := prog.Finalize(); err != nil {
		b.Fatal(err)
	}
	const fuel = 1 << 20
	m := interp.NewMachine(interp.Compile(prog))
	opts := interp.Options{Fuel: fuel}
	m.Reset(nil, opts)
	if out := m.Run(); out.Kind != interp.OutFuel { // warm-up + sanity
		b.Fatalf("fuel burner finished: %v", out.Kind)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset(nil, opts)
		if out := m.Run(); out.Kind != interp.OutFuel {
			b.Fatal("fuel burner finished early")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(fuel)*float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkGuestExec measures per-app guest-execution latency: every
// registered application's seed-derived input batch run on the reused
// direct-threaded Machine, against the tree-walking oracle on the identical
// batch (timed once during setup). Reported metrics:
//
//	threaded-vs-tree — tree-walker / threaded wall clock on the same batch;
//	                   CI asserts > 1.0 so dispatch regressions fail loudly
//	run-us           — threaded per-execution latency
//
// allocs/op must be zero: plain-mode runs on a warm Machine do not allocate.
// The batch is executed a fixed number of times per benchmark iteration so
// the speedup metric is stable even at -benchtime=1x.
func BenchmarkGuestExec(b *testing.B) {
	const reps = 20
	for _, app := range apps.All() {
		app := app
		b.Run(app.Short, func(b *testing.B) {
			seed := app.Format.Seed
			corrupt := append([]byte(nil), seed...)
			for i := len(corrupt) / 4; i < len(corrupt)/2; i++ {
				corrupt[i] = 0xFF
			}
			inputs := [][]byte{seed, corrupt, seed[:len(seed)/2], nil}
			opts := interp.Options{}
			m := interp.NewMachine(app.Compiled())
			for _, in := range inputs { // warm the machine's reusable storage
				m.Reset(in, opts)
				m.Run()
			}
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				for _, in := range inputs {
					interp.RunTree(app.Program, in, opts)
				}
			}
			tree := time.Since(t0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < reps; r++ {
					for _, in := range inputs {
						m.Reset(in, opts)
						m.Run()
					}
				}
			}
			b.StopTimer()
			perIter := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(tree.Seconds()/perIter, "threaded-vs-tree")
			b.ReportMetric(perIter*1e6/float64(reps*len(inputs)), "run-us")
		})
	}
}

// BenchmarkTriagePrune measures the static value-range triage on the
// extended arith-hunting sweep: the same two-application arith wave runs
// with the triage enabled (statically safe sites fold to unsatisfiable
// without dispatching a hunt) and under the NoTriage ablation (every arith
// site hunts). Reported metrics: pruned-hunts (how many solver sessions the
// triage removed) and no-triage-time-ratio (ablation wall-clock over triaged
// wall-clock). The application pair is chosen to keep the ablation wave
// affordable — cwebp's hard-unsatisfiable addition constraints cost the
// solver minutes to certify, which is exactly the cost profile the triage
// exists to avoid, but too slow for a smoke benchmark.
func BenchmarkTriagePrune(b *testing.B) {
	var appList []*apps.App
	for _, short := range []string{"gifview", "tifthumb"} {
		a, err := apps.ByName(short)
		if err != nil {
			b.Fatal(err)
		}
		appList = append(appList, a)
	}
	for i := 0; i < b.N; i++ {
		start := time.Now()
		on := harness.Evaluate(harness.Config{Seed: 21, Arith: true}, appList)
		triagedDur := time.Since(start)
		start = time.Now()
		off := harness.Evaluate(harness.Config{Seed: 21, Arith: true,
			Engine: core.Options{NoTriage: true}}, appList)
		ablationDur := time.Since(start)
		pruned := 0
		for _, o := range on {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
			for _, as := range o.Arith {
				if as.Pruned {
					pruned++
				}
			}
		}
		for _, o := range off {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
			for _, as := range o.Arith {
				if as.Pruned {
					b.Fatalf("%s: pruned site under the NoTriage ablation", as.Site.Name)
				}
			}
		}
		if pruned == 0 {
			b.Fatal("triage pruned no arith hunts; the benchmark measures nothing")
		}
		b.ReportMetric(float64(pruned), "pruned-hunts")
		b.ReportMetric(ablationDur.Seconds()/triagedDur.Seconds(), "no-triage-time-ratio")
	}
}
