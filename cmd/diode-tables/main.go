// Command diode-tables regenerates the evaluation tables: Table 1 (target
// site classification), Table 2 (evaluation summary, including the §5.5/§5.6
// success-rate columns) and the §5.4 same-path experiment, with paper values
// printed beside the measured ones — plus the extended-suite table, whose
// applications have no paper counterpart and render measured-only columns.
//
// The sweep runs as dispatch jobs over a backend: -backend local fans out on
// an in-process pool, -backend exec shards across spawned diode-worker
// processes. Tables are byte-identical for either backend at any worker
// count. -json streams the per-application report.AppRecord values as JSON
// lines instead of rendering tables; -db additionally writes the JSON results
// database to a file. Any application error aborts with a non-zero exit
// before any table is rendered.
//
// Usage:
//
//	diode-tables [-table all|1|2|samepath|extended] [-n 200] [-seed 1]
//	             [-parallel N] [-workers N] [-backend local|exec] [-worker BIN]
//	             [-cache-dir DIR] [-no-cache] [-json] [-progress] [-db out.json]
//	             [-discover] [-triage] [-no-triage] [-arith]
//	             [-cpuprofile FILE] [-memprofile FILE]
//
// -discover appends the statically discovered-site table (per-application
// alloc/arith counts from the internal/discover pass) after the selected
// tables. -triage appends the static value-range triage table (sites by
// triage verdict, plus the arith hunts the triage prunes). -no-triage
// disables the triage during hunts (ablation; the curated tables are
// byte-identical either way). -arith additionally hunts every discovered
// arith site through the probe transform and appends a per-application
// summary; expect multi-minute solver exhaustion on some sites.
//
// -cache-dir points at a shared on-disk result cache: a repeated sweep
// against the same directory serves every job from the cache (byte-identical
// tables, near-zero work) and reports hit/miss counters on stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"

	"diode"
	"diode/internal/harness"
	"diode/internal/prof"
	"diode/internal/report"
)

// main delegates to run so every exit path unwinds normally — os.Exit skips
// defers, and the profile flush in run relies on them.
func main() { os.Exit(run()) }

func run() (code int) {
	table := flag.String("table", "all", "which table to produce: all, 1, 2, samepath, extended")
	n := flag.Int("n", 200, "inputs per success-rate experiment (0 disables; paper uses 200)")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "pool multiplier for -backend local (apps × this many concurrent jobs; rows are identical at any setting). -backend exec sizes by -workers instead")
	workers := flag.Int("workers", 0, "worker count: apps per wave for -backend local (0 = one per app), processes for -backend exec (0 = GOMAXPROCS)")
	backendName := flag.String("backend", "local", "job backend: local (in-process pool) or exec (spawned diode-worker processes)")
	workerBin := flag.String("worker", "", "diode-worker binary for -backend exec (default: sibling of this binary, then $PATH)")
	jsonOut := flag.Bool("json", false, "emit one report.AppRecord JSON line per application instead of tables")
	progress := flag.Bool("progress", false, "stream live job progress to stderr")
	dbOut := flag.String("db", "", "also write the results database to this file")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory shared across runs (empty = memory only)")
	noCache := flag.Bool("no-cache", false, "disable result caching (analysis is still memoized in-process)")
	portfolio := flag.Int("portfolio", 0, "race this many solver configurations per hard CDCL solve (0/1 = single engine)")
	blockingSampling := flag.Bool("blocking-sampling", false, "ablation: enumerate sample models via blocking clauses instead of randomized restarts")
	discoverMode := flag.Bool("discover", false, "append the statically discovered-site table after the selected tables")
	triageTable := flag.Bool("triage", false, "append the static value-range triage table after the selected tables")
	arithWave := flag.Bool("arith", false, "also hunt the discovered arith sites (probe transform) and append a per-application summary; hard-unsatisfiable sites can cost the solver minutes")
	noTriage := flag.Bool("no-triage", false, "ablation: disable the static triage (no hunt short-circuits; arith sites all hunt)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()
	if flag.NArg() > 0 {
		// Fail loudly rather than silently ignoring arguments — in
		// particular the old `-json out.json` spelling, whose file role
		// moved to -db when -json became the record-stream mode.
		fmt.Fprintf(os.Stderr, "unexpected argument %q (-json is now a boolean record-stream mode; use -db FILE for the results database)\n", flag.Arg(0))
		return 2
	}
	profiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		return 2
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One job cache for the whole sweep: the planner's analyses and the
	// local backend's hunts share it, and -cache-dir makes results persist
	// so a repeated sweep is served without re-running any hunt.
	jc := diode.NewJobCache(diode.JobCacheConfig{Dir: *cacheDir, NoResults: *noCache})
	cfg := harness.Config{Seed: *seed, Parallelism: *parallel, Workers: *workers, Cache: jc, Arith: *arithWave,
		Engine: diode.Options{Portfolio: *portfolio, OneShotSampling: *blockingSampling, NoTriage: *noTriage}}
	var appList []*diode.App
	switch *table {
	case "1":
		// Classification only: no sampling experiments needed.
		appList = diode.PaperApplications()
	case "2":
		appList = diode.PaperApplications()
		cfg.SampleN = *n
	case "samepath":
		appList = diode.PaperApplications()
		cfg.SamePath = true
	case "extended":
		appList = diode.ExtendedApplications()
		cfg.SampleN = *n
	case "all":
		appList = diode.Applications()
		cfg.SampleN = *n
		cfg.SamePath = true
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		return 2
	}

	var sink diode.JobSink
	if *progress {
		var done atomic.Int64
		sink = func(ev diode.JobEvent) {
			switch ev.Type {
			case diode.JobStarted:
				fmt.Fprintf(os.Stderr, "[diode-tables] %s %s started\n", ev.Job.Kind, ev.Job.Site)
			case diode.JobFinished:
				fmt.Fprintf(os.Stderr, "[diode-tables] %s %s done (%d jobs finished)\n",
					ev.Job.Kind, ev.Job.Site, done.Add(1))
			case diode.JobCacheHit:
				fmt.Fprintf(os.Stderr, "[diode-tables] %s %s cached (%d jobs finished)\n",
					ev.Job.Kind, ev.Job.Site, done.Add(1))
			}
		}
	}
	var execBackend *diode.ExecBackend
	switch *backendName {
	case "local":
		cfg.Sink = sink
	case "exec":
		execWorkers := *workers
		if execWorkers == 0 {
			execWorkers = runtime.GOMAXPROCS(0)
		}
		execBackend = &diode.ExecBackend{Binary: *workerBin, Workers: execWorkers, Sink: sink,
			CacheDir: *cacheDir, NoCache: *noCache}
		cfg.Backend = execBackend
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (local, exec)\n", *backendName)
		return 2
	}

	outcomes := harness.EvaluateContext(ctx, cfg, appList)
	if *cacheDir != "" || *progress {
		cs := jc.Stats()
		if execBackend != nil {
			// Workers run their own caches; fold their counters in.
			cs = cs.Plus(execBackend.CacheStats())
		}
		fmt.Fprintf(os.Stderr, "[diode-tables] cache: hits=%d misses=%d stores=%d corrupt=%d analysisRuns=%d analysisHits=%d\n",
			cs.Hits, cs.Misses, cs.Stores, cs.CorruptEntries, cs.AnalysisRuns, cs.AnalysisHits)
	}
	failed := false
	for _, o := range outcomes {
		if o.Err != nil {
			failed = true
			fmt.Fprintln(os.Stderr, o.Err)
		}
	}
	if failed || ctx.Err() != nil {
		// No partial tables: a missing application would silently skew the
		// totals row, so any error (or a cancelled sweep) is fatal.
		return 1
	}
	recs := harness.Records(outcomes)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
	} else {
		if *table == "1" || *table == "all" {
			fmt.Println(diode.Table1(diode.PaperApplications(), recs))
		}
		if *table == "2" || *table == "all" {
			fmt.Println(diode.Table2(diode.PaperApplications(), recs))
		}
		if *table == "samepath" || *table == "all" {
			fmt.Println("Same-path constraint satisfiability (§5.4; paper: sat only for")
			fmt.Println("SwfPlay jpeg.c@192 and CWebP jpegdec.c@248):")
			for _, rec := range recs {
				for _, s := range rec.Sites {
					if s.Class == "exposed" && s.SamePathSat != "" {
						fmt.Printf("  %-32s %s\n", s.Site, s.SamePathSat)
					}
				}
			}
			fmt.Println()
		}
		if *table == "extended" || *table == "all" {
			fmt.Println(diode.TableExtended(diode.ExtendedApplications(), recs))
		}
		if *discoverMode {
			out, err := diode.TableDiscovered(appList)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(out)
		}
		if *triageTable {
			out, err := diode.TableTriage(appList)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(out)
		}
		if *arithWave {
			fmt.Println("Arith-site hunts (overflow constraints derived at the arith node;")
			fmt.Println("pruned = statically safe, folded without a solver session):")
			for _, o := range outcomes {
				var pruned, exposed int
				for _, as := range o.Arith {
					if as.Pruned {
						pruned++
					}
					if as.Verdict == diode.VerdictExposed {
						exposed++
					}
				}
				fmt.Printf("  %-16s %3d sites: %d exposed, %d pruned\n",
					o.App.Short, len(o.Arith), exposed, pruned)
				for _, as := range o.Arith {
					if as.Verdict == diode.VerdictExposed {
						fmt.Printf("    %-48s %s\n", as.Site.Name, as.ErrorType)
					}
				}
			}
			fmt.Println()
		}
	}

	if *dbOut != "" {
		data, err := report.Save(recs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(*dbOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "results database written to", *dbOut)
	}
	return 0
}
