// Command diode-tables regenerates the evaluation tables: Table 1 (target
// site classification), Table 2 (evaluation summary, including the §5.5/§5.6
// success-rate columns) and the §5.4 same-path experiment, with paper values
// printed beside the measured ones — plus the extended-suite table, whose
// applications have no paper counterpart and render measured-only columns.
//
// Usage:
//
//	diode-tables [-table all|1|2|samepath|extended] [-n 200] [-seed 1] [-parallel N] [-json out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"diode"
	"diode/internal/harness"
	"diode/internal/report"
)

func main() {
	table := flag.String("table", "all", "which table to produce: all, 1, 2, samepath, extended")
	n := flag.Int("n", 200, "inputs per success-rate experiment (0 disables; paper uses 200)")
	seed := flag.Int64("seed", 1, "base random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent site hunts per application (1 = sequential; rows are identical)")
	jsonOut := flag.String("json", "", "also write the results database to this file")
	flag.Parse()

	cfg := harness.Config{Seed: *seed, Parallelism: *parallel}
	var appList []*diode.App
	switch *table {
	case "1":
		// Classification only: no sampling experiments needed.
		appList = diode.PaperApplications()
	case "2":
		appList = diode.PaperApplications()
		cfg.SampleN = *n
	case "samepath":
		appList = diode.PaperApplications()
		cfg.SamePath = true
	case "extended":
		appList = diode.ExtendedApplications()
		cfg.SampleN = *n
	case "all":
		appList = diode.Applications()
		cfg.SampleN = *n
		cfg.SamePath = true
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}

	outcomes := harness.Evaluate(cfg, appList)
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintln(os.Stderr, o.Err)
			os.Exit(1)
		}
	}
	recs := harness.Records(outcomes)

	if *table == "1" || *table == "all" {
		fmt.Println(diode.Table1(diode.PaperApplications(), recs))
	}
	if *table == "2" || *table == "all" {
		fmt.Println(diode.Table2(diode.PaperApplications(), recs))
	}
	if *table == "samepath" || *table == "all" {
		fmt.Println("Same-path constraint satisfiability (§5.4; paper: sat only for")
		fmt.Println("SwfPlay jpeg.c@192 and CWebP jpegdec.c@248):")
		for _, rec := range recs {
			for _, s := range rec.Sites {
				if s.Class == "exposed" && s.SamePathSat != "" {
					fmt.Printf("  %-32s %s\n", s.Site, s.SamePathSat)
				}
			}
		}
		fmt.Println()
	}
	if *table == "extended" || *table == "all" {
		fmt.Println(diode.TableExtended(diode.ExtendedApplications(), recs))
	}

	if *jsonOut != "" {
		data, err := report.Save(recs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("results database written to", *jsonOut)
	}
}
