// Command diode runs the DIODE pipeline against one benchmark application
// and prints a bug report per target site: classification, the enforced
// sanity checks, the triggering input's field values, and the observed
// error.
//
// Usage:
//
//	diode -app dillo [-seed 1] [-parallel N] [-expr] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"diode"
)

func main() {
	appName := flag.String("app", "dillo",
		"application: "+strings.Join(diode.ApplicationNames(diode.Applications()), ", "))
	seed := flag.Int64("seed", 1, "random seed for the hunt")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent site hunts (1 = sequential; verdicts are identical)")
	showExpr := flag.Bool("expr", false, "print the symbolic target expression per site")
	verbose := flag.Bool("v", false, "print relevant input bytes, path statistics and solver counters")
	flag.Parse()

	app, err := diode.Application(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sched := diode.NewScheduler(app, diode.Options{Seed: *seed, Parallelism: *parallel})
	result, err := sched.RunAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "analysis failed:", err)
		os.Exit(1)
	}

	fmt.Printf("%s — %d target sites (analysis %s)\n\n", app.Name, len(result.Sites), result.Analysis)
	exposed := 0
	for _, sr := range result.Sites {
		t := sr.Target
		fmt.Printf("site %s: %s", t.Site, sr.Verdict)
		if sr.Verdict == diode.VerdictExposed {
			exposed++
			fmt.Printf(" (%s, %d branches enforced, %s)", sr.ErrorType, sr.EnforcedCount(), sr.Discovery)
		}
		fmt.Println()
		if *verbose {
			fmt.Printf("  relevant bytes: %v\n", t.RelevantBytes)
			fmt.Printf("  relevant branches on seed path: %d static / %d dynamic\n",
				len(t.SeedPath), t.DynamicBranches)
		}
		if *showExpr {
			fmt.Printf("  target expression: %s\n", t.Expr)
		}
		if sr.Verdict == diode.VerdictExposed {
			if len(sr.Enforced) > 0 {
				fmt.Printf("  enforced checks: %s\n", strings.Join(sr.Enforced, ", "))
			}
			fmt.Printf("  triggering field values:\n")
			for _, spec := range app.Format.Fields.Specs() {
				seedVal := spec.Read(app.Format.Seed)
				newVal := spec.Read(sr.Input)
				if seedVal != newVal {
					fmt.Printf("    %-20s %d -> %d\n", spec.Name, seedVal, newVal)
				}
			}
		}
		fmt.Println()
	}
	fmt.Printf("%d overflows exposed out of %d sites\n", exposed, len(result.Sites))
	if *verbose {
		st := sched.SolverStats()
		fmt.Printf("solver: %d concrete hits, %d SAT solves, %d unsat, %d unknown (aggregated over %d-way hunts)\n",
			st.ConcreteHits, st.SATSolves, st.UnsatResults, st.UnknownOut, sched.Parallelism())
		fmt.Printf("incremental: %d model-cache hits, %d assumption solves, %d learned clauses reused\n",
			st.ModelCacheHits, st.AssumptionSolves, st.ClausesReused)
	}
}
