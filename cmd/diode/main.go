// Command diode runs the DIODE pipeline against one benchmark application
// and prints a bug report per target site: classification, the enforced
// sanity checks, the triggering input's field values, and the observed
// error.
//
// The hunts run as dispatch jobs: -backend local fans them out on an
// in-process pool, -backend exec shards them across spawned diode-worker
// processes (the §4 work-queue role). -progress streams live per-site
// started/iteration/verdict lines to stderr as the jobs execute; -json
// replaces the text report with one report.SiteRecord JSON line per site on
// stdout. The command exits non-zero if analysis fails or any job errors.
//
// Usage:
//
//	diode -app dillo [-seed 1] [-parallel N] [-backend local|exec] [-worker BIN]
//	      [-cache-dir DIR] [-no-cache] [-expr] [-v] [-json] [-progress]
//	      [-sites] [-triage] [-no-triage] [-discover]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// -sites prints the application's statically discovered overflow sites (the
// internal/discover listing: name, kind, function, taint sources, rendered
// expression) and exits without hunting. -triage prints the same sites with
// their static value-range triage verdict and bounds and exits. -no-triage
// disables the triage during hunts (ablation). -discover runs the normal
// hunt but sweeps the sites in static discovery order and appends a
// discovery summary line to the report.
//
// -cache-dir points at a shared on-disk result cache: a repeated run against
// the same directory serves every hunt from the cache (byte-identical
// output, near-zero work) and reports hit/miss counters on stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"

	"diode"
	"diode/internal/prof"
	"diode/internal/report"
)

// main delegates to run so every exit path unwinds normally — os.Exit skips
// defers, and the profile flush in run relies on them.
func main() { os.Exit(run()) }

func run() (code int) {
	appName := flag.String("app", "dillo",
		"application: "+strings.Join(diode.ApplicationNames(diode.Applications()), ", "))
	seed := flag.Int64("seed", 1, "random seed for the hunt")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent site hunts (1 = sequential; verdicts are identical)")
	backendName := flag.String("backend", "local", "job backend: local (in-process pool) or exec (spawned diode-worker processes)")
	workerBin := flag.String("worker", "", "diode-worker binary for -backend exec (default: sibling of this binary, then $PATH)")
	showExpr := flag.Bool("expr", false, "print the symbolic target expression per site")
	verbose := flag.Bool("v", false, "print relevant input bytes, path statistics and solver counters")
	jsonOut := flag.Bool("json", false, "emit one report.SiteRecord JSON line per site instead of the text report")
	progress := flag.Bool("progress", false, "stream live job progress (started/iteration/verdict) to stderr")
	cacheDir := flag.String("cache-dir", "", "on-disk result cache directory shared across runs (empty = memory only)")
	noCache := flag.Bool("no-cache", false, "disable result caching (analysis is still memoized in-process)")
	portfolio := flag.Int("portfolio", 0, "race this many solver configurations per hard CDCL solve (0/1 = single engine)")
	blockingSampling := flag.Bool("blocking-sampling", false, "ablation: enumerate sample models via blocking clauses instead of randomized restarts")
	sitesMode := flag.Bool("sites", false, "list the statically discovered sites (name, kind, function, taint, expression) and exit without hunting")
	triageMode := flag.Bool("triage", false, "list the discovered sites with their static value-range triage (verdict, bounds) and exit without hunting")
	noTriage := flag.Bool("no-triage", false, "ablation: disable the static triage (no hunt short-circuits; arith sites all hunt)")
	discoverMode := flag.Bool("discover", false, "sweep in static discovery order and append the discovered-site summary")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected argument %q\n", flag.Arg(0))
		return 2
	}
	profiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		return 2
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	app, err := diode.Application(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *sitesMode {
		out, err := sitesListing(app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discovery failed:", err)
			return 1
		}
		fmt.Print(out)
		return 0
	}
	if *triageMode {
		out, err := triageListing(app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "triage failed:", err)
			return 1
		}
		fmt.Print(out)
		return 0
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := diode.Options{Seed: *seed, Portfolio: *portfolio, OneShotSampling: *blockingSampling, NoTriage: *noTriage}
	// The job cache memoizes the analysis and, with -cache-dir, serves whole
	// job results from disk so repeated runs skip the hunts entirely.
	jc := diode.NewJobCache(diode.JobCacheConfig{Dir: *cacheDir, NoResults: *noCache})
	targets, err := jc.Targets(ctx, app, diode.JobOptionsFrom(opts))
	if err != nil {
		fmt.Fprintln(os.Stderr, "analysis failed:", err)
		return 1
	}
	// Under -discover the sweep runs in static discovery order rather than
	// seed-execution order; verdicts are per-site seeded either way, so the
	// ordering only affects presentation.
	var discovered []diode.DiscoveredSite
	if *discoverMode {
		discovered, err = app.Discovered()
		if err != nil {
			fmt.Fprintln(os.Stderr, "discovery failed:", err)
			return 1
		}
		discoveryOrder(discovered, targets)
	}
	// One hunt job per analyzed site, seeded exactly as a Scheduler would
	// seed its per-site Hunters; the targets are kept for the verbose
	// per-site introspection below.
	jobs := diode.HuntJobsFor(app, opts, targets)

	var sink diode.JobSink
	if *progress {
		sink = func(ev diode.JobEvent) {
			switch ev.Type {
			case diode.JobStarted:
				fmt.Fprintf(os.Stderr, "[diode] %s: hunt started\n", ev.Job.Site)
			case diode.JobIteration:
				fmt.Fprintf(os.Stderr, "[diode] %s: enforcement iteration %d\n", ev.Job.Site, ev.Iteration)
			case diode.JobFinished:
				fmt.Fprintf(os.Stderr, "[diode] %s: %s\n", ev.Job.Site, ev.Result.Verdict)
			case diode.JobCacheHit:
				fmt.Fprintf(os.Stderr, "[diode] %s: %s (cached)\n", ev.Job.Site, ev.Result.Verdict)
			}
		}
	}
	var backend diode.Backend
	var execBackend *diode.ExecBackend
	switch *backendName {
	case "local":
		backend = &diode.LocalBackend{Workers: *parallel, Sink: sink, Cache: jc}
	case "exec":
		execBackend = &diode.ExecBackend{Binary: *workerBin, Workers: *parallel, Sink: sink,
			CacheDir: *cacheDir, NoCache: *noCache}
		backend = execBackend
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (local, exec)\n", *backendName)
		return 2
	}

	results, err := diode.RunJobs(ctx, backend, jobs)
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "dispatch failed:", err)
		return 1
	}
	if ctx.Err() != nil {
		// Interrupted: report the sites that finished, then exit non-zero.
		fmt.Fprintf(os.Stderr, "interrupted: %d of %d sites finished\n", len(results), len(jobs))
	}
	// Results stream in completion order; report in analysis (job) order.
	sort.Slice(results, func(i, j int) bool { return results[i].JobID < results[j].JobID })

	failed := false
	for _, r := range results {
		if r.Err != "" {
			failed = true
			fmt.Fprintf(os.Stderr, "%s: %s\n", r.Site, r.Err)
		}
	}

	if *verbose || *cacheDir != "" {
		cs := jc.Stats()
		if execBackend != nil {
			// Workers run their own caches; fold their counters in.
			cs = cs.Plus(execBackend.CacheStats())
		}
		fmt.Fprintf(os.Stderr, "[diode] cache: hits=%d misses=%d stores=%d corrupt=%d analysisRuns=%d analysisHits=%d\n",
			cs.Hits, cs.Misses, cs.Stores, cs.CorruptEntries, cs.AnalysisRuns, cs.AnalysisHits)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range results {
			if r.Err != "" {
				continue
			}
			verdict, _ := r.CoreVerdict()
			rec := report.SiteRecord{
				App:             r.App,
				Site:            r.Site,
				Verdict:         r.Verdict,
				Class:           verdict.Class().String(),
				ErrorType:       r.ErrorType,
				Enforced:        len(r.Enforced),
				RelevantDynamic: r.DynamicBranches,
				DiscoveryMS:     r.DiscoveryMS,
			}
			if err := enc.Encode(&rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		if failed || ctx.Err() != nil {
			return 1
		}
		return 0
	}

	byID := make(map[int]*diode.Target, len(targets))
	for i := range targets {
		byID[jobs[i].ID] = targets[i]
	}
	fmt.Printf("%s — %d target sites\n\n", app.Name, len(results))
	exposed := 0
	var stats diode.SolverStats
	for _, r := range results {
		stats.Add(r.Stats)
		if r.Err != "" {
			fmt.Printf("site %s: error\n\n", r.Site)
			continue
		}
		t := byID[r.JobID]
		fmt.Printf("site %s: %s", r.Site, r.Verdict)
		if r.Verdict == diode.VerdictExposed.String() {
			exposed++
			fmt.Printf(" (%s, %d branches enforced, %dms)", r.ErrorType, len(r.Enforced), r.DiscoveryMS)
		}
		fmt.Println()
		if *verbose {
			fmt.Printf("  relevant bytes: %v\n", t.RelevantBytes)
			fmt.Printf("  relevant branches on seed path: %d static / %d dynamic\n",
				len(t.SeedPath), t.DynamicBranches)
		}
		if *showExpr {
			fmt.Printf("  target expression: %s\n", t.Expr)
		}
		if r.Verdict == diode.VerdictExposed.String() {
			if len(r.Enforced) > 0 {
				fmt.Printf("  enforced checks: %s\n", strings.Join(r.Enforced, ", "))
			}
			fmt.Printf("  triggering field values:\n")
			for _, spec := range app.Format.Fields.Specs() {
				seedVal := spec.Read(app.Format.Seed)
				newVal := spec.Read(r.Input)
				if seedVal != newVal {
					fmt.Printf("    %-20s %d -> %d\n", spec.Name, seedVal, newVal)
				}
			}
		}
		fmt.Println()
	}
	fmt.Printf("%d overflows exposed out of %d sites\n", exposed, len(results))
	if *discoverMode {
		fmt.Println(discoverySummary(discovered, len(targets)))
	}
	if *verbose {
		fmt.Printf("solver: %d concrete hits, %d SAT solves, %d unsat, %d unknown (aggregated over %d-way %s dispatch)\n",
			stats.ConcreteHits, stats.SATSolves, stats.UnsatResults, stats.UnknownOut, *parallel, *backendName)
		fmt.Printf("incremental: %d model-cache hits, %d assumption solves, %d learned clauses reused\n",
			stats.ModelCacheHits, stats.AssumptionSolves, stats.ClausesReused)
	}
	if failed || ctx.Err() != nil {
		return 1
	}
	return 0
}
