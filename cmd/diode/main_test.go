package main

import (
	"strings"
	"testing"

	"diode"
)

// TestSitesListingFormat pins the -sites output format: a tab-aligned header
// row, one row per discovered site with the site name first and the kind in
// column two, matching the discovery listing the golden files pin.
func TestSitesListingFormat(t *testing.T) {
	app, err := diode.Application("dillo")
	if err != nil {
		t.Fatal(err)
	}
	out, err := sitesListing(app)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("listing has no site rows:\n%s", out)
	}
	header := strings.Fields(lines[0])
	want := []string{"SITE", "KIND", "FUNC", "TAINT", "EXPR"}
	if len(header) != len(want) {
		t.Fatalf("header = %v, want %v", header, want)
	}
	for i := range want {
		if header[i] != want[i] {
			t.Fatalf("header = %v, want %v", header, want)
		}
	}
	sites, err := app.Discovered()
	if err != nil {
		t.Fatal(err)
	}
	if len(lines)-1 != len(sites) {
		t.Fatalf("%d rows for %d discovered sites", len(lines)-1, len(sites))
	}
	for i, s := range sites {
		fields := strings.Fields(lines[i+1])
		if len(fields) < 4 {
			t.Fatalf("row %d too short: %q", i, lines[i+1])
		}
		if fields[0] != s.Name {
			t.Errorf("row %d site = %q, want %q (rows must follow discovery order)", i, fields[0], s.Name)
		}
		if fields[1] != string(s.Kind) {
			t.Errorf("row %d kind = %q, want %q", i, fields[1], s.Kind)
		}
	}
	// The listing is byte-identical to the facade formatter the goldens pin.
	if out != diode.FormatDiscovered(sites) {
		t.Error("sitesListing diverges from FormatDiscovered")
	}
}

// TestDiscoverySummaryCounts pins the -discover footer format.
func TestDiscoverySummaryCounts(t *testing.T) {
	sites := []diode.DiscoveredSite{
		{Name: "a", Kind: diode.SiteKindAlloc},
		{Name: "b", Kind: diode.SiteKindArith},
		{Name: "c", Kind: diode.SiteKindArith},
	}
	got := discoverySummary(sites, 1)
	want := "discovery v" + diode.DiscoverVersion + ": 3 sites (1 alloc, 2 arith); 1 of 1 alloc sites reached tainted by the seed input"
	if got != want {
		t.Errorf("summary = %q\nwant      %q", got, want)
	}
}

// TestDiscoveryOrderReorders: targets given in reversed order come back in
// discovery (program-text) order, stably.
func TestDiscoveryOrderReorders(t *testing.T) {
	sites := []diode.DiscoveredSite{
		{Name: "p:f#s0", Kind: diode.SiteKindAlloc},
		{Name: "p:f#s1.e@*", Kind: diode.SiteKindArith},
		{Name: "p:f#s2", Kind: diode.SiteKindAlloc},
		{Name: "p:g#s0", Kind: diode.SiteKindAlloc},
	}
	targets := []*diode.Target{
		{Site: "p:g#s0"}, {Site: "p:f#s2"}, {Site: "p:f#s0"},
	}
	discoveryOrder(sites, targets)
	want := []string{"p:f#s0", "p:f#s2", "p:g#s0"}
	for i, w := range want {
		if targets[i].Site != w {
			t.Fatalf("target %d = %q, want %q", i, targets[i].Site, w)
		}
	}
}
