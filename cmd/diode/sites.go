package main

import (
	"fmt"
	"sort"

	"diode"
)

// sitesListing returns the -sites output for one application: exactly the
// discovery listing, so the bytes match the golden files under
// internal/apps/testdata/discovered and the `make discover-smoke` diff.
func sitesListing(app *diode.App) (string, error) {
	sites, err := app.Discovered()
	if err != nil {
		return "", err
	}
	return diode.FormatDiscovered(sites), nil
}

// triageListing returns the -triage output for one application: exactly the
// triage listing, so the bytes match the golden files under
// internal/apps/testdata/triage and the `make triage-smoke` diff.
func triageListing(app *diode.App) (string, error) {
	sites, err := diode.Triaged(app)
	if err != nil {
		return "", err
	}
	return diode.FormatTriage(sites), nil
}

// discoveryOrder reorders analyzed targets into static discovery order
// (program traversal order), the -discover sweep order. Analysis order is
// seed-execution order; discovery order is the stable program-text order,
// so a -discover sweep lists sites the way a reader of the listing expects
// regardless of which path the seed input took.
func discoveryOrder(sites []diode.DiscoveredSite, targets []*diode.Target) {
	order := make(map[string]int, len(sites))
	for i, s := range sites {
		if s.Kind == diode.SiteKindAlloc {
			order[s.Name] = i
		}
	}
	rank := func(t *diode.Target) int {
		if r, ok := order[t.Site]; ok {
			return r
		}
		return len(sites) // unreachable defensively: analysis ⊆ discovery
	}
	sort.SliceStable(targets, func(i, j int) bool { return rank(targets[i]) < rank(targets[j]) })
}

// discoverySummary renders the -discover footer: the full static surface
// next to how much of it the seed input dynamically reaches.
func discoverySummary(sites []diode.DiscoveredSite, hunted int) string {
	var alloc, arith int
	for _, s := range sites {
		switch s.Kind {
		case diode.SiteKindAlloc:
			alloc++
		case diode.SiteKindArith:
			arith++
		}
	}
	return fmt.Sprintf("discovery v%s: %d sites (%d alloc, %d arith); %d of %d alloc sites reached tainted by the seed input",
		diode.DiscoverVersion, alloc+arith, alloc, arith, hunted, alloc)
}
