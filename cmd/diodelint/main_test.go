package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a source file into dir, creating it as a fake package root.
func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

const dispatchSrc = `package dispatch
type Options struct {
	Seed int
	Fuel int
}
type Job struct {
	ID   int
	Site string
}
`

const cacheTestSrc = `package dispatch
var optionsKeyFlips = map[string]func(*Options){
	"Seed": func(o *Options) { o.Seed++ },
	"Fuel": func(o *Options) { o.Fuel++ },
}
var jobKeyFlips = map[string]func(*Job){
	"Site": func(j *Job) { j.Site = "x" },
}
var jobKeyExcluded = map[string]func(*Job){
	"ID": func(j *Job) { j.ID++ },
}
`

// TestFlipTableCheckClean pins that a consistent field/table pair passes.
func TestFlipTableCheckClean(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "dispatch.go", dispatchSrc)
	write(t, dir, "cache_test.go", cacheTestSrc)
	if problems := checkFlipTables(dir); len(problems) != 0 {
		t.Fatalf("clean package flagged: %v", problems)
	}
}

// TestFlipTableCheckViolations pins the three failure modes: a struct field
// with no table entry, a stale table key, and a Job field in both tables.
func TestFlipTableCheckViolations(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "dispatch.go", `package dispatch
type Options struct {
	Seed    int
	Orphan  int
}
type Job struct {
	ID   int
	Site string
}
`)
	write(t, dir, "cache_test.go", `package dispatch
var optionsKeyFlips = map[string]func(*Options){
	"Seed":    func(o *Options) { o.Seed++ },
	"Renamed": func(o *Options) {},
}
var jobKeyFlips = map[string]func(*Job){
	"Site": func(j *Job) { j.Site = "x" },
	"ID":   func(j *Job) { j.ID++ },
}
var jobKeyExcluded = map[string]func(*Job){
	"ID": func(j *Job) { j.ID++ },
}
`)
	problems := strings.Join(checkFlipTables(dir), "\n")
	for _, want := range []string{
		"Options.Orphan has no optionsKeyFlips entry",
		`optionsKeyFlips["Renamed"] names no Options field`,
		"Job.ID is in both jobKeyFlips and jobKeyExcluded",
	} {
		if !strings.Contains(problems, want) {
			t.Errorf("missing violation %q in:\n%s", want, problems)
		}
	}
}

const threadedSrc = `package interp
const (
	opA uint8 = iota
	opB
	opC
)
const opColdMark = opB
type Machine struct{}
type instr struct{ op uint8 }
func (m *Machine) exec() error {
	var in instr
	switch in.op {
	case opA:
	case opB, opC:
	}
	return nil
}
`

// TestOpcodeCheckClean pins that a fully handled opcode set passes, with
// boundary-marker aliases exempt.
func TestOpcodeCheckClean(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "threaded.go", threadedSrc)
	if problems := checkOpcodeSwitch(dir); len(problems) != 0 {
		t.Fatalf("clean package flagged: %v", problems)
	}
}

// TestOpcodeCheckViolations pins both directions: an unhandled opcode and a
// case naming a constant that does not exist.
func TestOpcodeCheckViolations(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "threaded.go", `package interp
const (
	opA uint8 = iota
	opB
	opGhostless
)
type Machine struct{}
type instr struct{ op uint8 }
func (m *Machine) exec() error {
	var in instr
	switch in.op {
	case opA:
	case opB:
	case opDeleted:
	}
	return nil
}
`)
	problems := strings.Join(checkOpcodeSwitch(dir), "\n")
	for _, want := range []string{
		"opcode opGhostless has no case",
		"case opDeleted matches no declared op* constant",
	} {
		if !strings.Contains(problems, want) {
			t.Errorf("missing violation %q in:\n%s", want, problems)
		}
	}
}

// TestRealPackagesPass runs the linter against the actual repo packages —
// the same invocation `make diodelint` and CI use.
func TestRealPackagesPass(t *testing.T) {
	for dir, check := range map[string]func(string) []string{
		"../../internal/dispatch": checkFlipTables,
		"../../internal/interp":   checkOpcodeSwitch,
	} {
		if problems := check(dir); len(problems) != 0 {
			t.Errorf("%s: %v", dir, problems)
		}
	}
}
