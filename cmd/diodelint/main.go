// Command diodelint is the repo-specific structural linter. It enforces two
// exhaustiveness invariants that ordinary Go tooling cannot see, using only
// go/parser and go/ast (no third-party analysis framework):
//
//  1. Cache-key review (internal/dispatch): every field of dispatch.Options
//     and dispatch.Job must be accounted for in the cache_test.go flip
//     tables — optionsKeyFlips for Options, jobKeyFlips or jobKeyExcluded
//     for Job. Adding a field without deciding whether it changes JobKey is
//     the bug class that silently serves stale cached results; the runtime
//     test checks the tables against reflect, and this linter catches the
//     same drift statically, before tests run.
//
//  2. Opcode dispatch (internal/interp): every op* opcode constant declared
//     in threaded.go must appear as a case in Machine.exec's `switch in.op`
//     dispatch loop. An opcode the compiler can emit but the loop does not
//     handle falls through to the unknown-opcode error at runtime; this
//     catches it at lint time. Boundary markers (consts whose value is just
//     an alias of another op* constant, e.g. opColdBase) are exempt.
//
// Usage:
//
//	diodelint [package-dir ...]
//
// With no arguments it checks ./internal/dispatch and ./internal/interp.
// For each directory it applies whichever checks its files support, prints
// one line per violation, and exits non-zero if any check fails.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	if len(args) == 0 {
		args = []string{"./internal/dispatch", "./internal/interp"}
	}
	var problems []string
	checked := 0
	for _, dir := range args {
		if fileExists(filepath.Join(dir, "cache_test.go")) && fileExists(filepath.Join(dir, "dispatch.go")) {
			checked++
			problems = append(problems, checkFlipTables(dir)...)
		}
		if fileExists(filepath.Join(dir, "threaded.go")) {
			checked++
			problems = append(problems, checkOpcodeSwitch(dir)...)
		}
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "diodelint: no checkable files under", args)
		return 2
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		return 1
	}
	fmt.Printf("diodelint: ok (%d checks)\n", checked)
	return 0
}

func fileExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && !info.IsDir()
}

func parse(path string) (*ast.File, error) {
	return parser.ParseFile(token.NewFileSet(), path, nil, parser.SkipObjectResolution)
}

// checkFlipTables enforces invariant 1: struct fields of Options and Job in
// dispatch.go versus the string keys of the flip-table map literals in
// cache_test.go.
func checkFlipTables(dir string) []string {
	src := filepath.Join(dir, "dispatch.go")
	tst := filepath.Join(dir, "cache_test.go")
	srcF, err := parse(src)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", src, err)}
	}
	tstF, err := parse(tst)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", tst, err)}
	}
	options := structFields(srcF, "Options")
	job := structFields(srcF, "Job")
	if options == nil || job == nil {
		return []string{fmt.Sprintf("%s: Options or Job struct not found", src)}
	}
	optFlips := mapKeys(tstF, "optionsKeyFlips")
	jobFlips := mapKeys(tstF, "jobKeyFlips")
	jobExcluded := mapKeys(tstF, "jobKeyExcluded")
	if optFlips == nil || jobFlips == nil || jobExcluded == nil {
		return []string{fmt.Sprintf("%s: flip tables (optionsKeyFlips/jobKeyFlips/jobKeyExcluded) not found", tst)}
	}

	var out []string
	for _, f := range sorted(options) {
		if !optFlips[f] {
			out = append(out, fmt.Sprintf("%s: Options.%s has no optionsKeyFlips entry in %s (new Options fields need a cache-key flip decision)", src, f, tst))
		}
	}
	for _, f := range sorted(job) {
		switch {
		case jobFlips[f] && jobExcluded[f]:
			out = append(out, fmt.Sprintf("%s: Job.%s is in both jobKeyFlips and jobKeyExcluded", tst, f))
		case !jobFlips[f] && !jobExcluded[f]:
			out = append(out, fmt.Sprintf("%s: Job.%s is in neither jobKeyFlips nor jobKeyExcluded in %s (new Job fields need a cache-key flip decision)", src, f, tst))
		}
	}
	// Stale entries: a renamed or deleted field leaves a table key that the
	// runtime reflect walk would no longer visit.
	for _, k := range sorted(optFlips) {
		if !options[k] {
			out = append(out, fmt.Sprintf("%s: optionsKeyFlips[%q] names no Options field", tst, k))
		}
	}
	for _, k := range sorted(jobFlips) {
		if !job[k] {
			out = append(out, fmt.Sprintf("%s: jobKeyFlips[%q] names no Job field", tst, k))
		}
	}
	for _, k := range sorted(jobExcluded) {
		if !job[k] {
			out = append(out, fmt.Sprintf("%s: jobKeyExcluded[%q] names no Job field", tst, k))
		}
	}
	return out
}

// checkOpcodeSwitch enforces invariant 2: op* constants in threaded.go
// versus the case clauses of Machine.exec's `switch in.op`.
func checkOpcodeSwitch(dir string) []string {
	src := filepath.Join(dir, "threaded.go")
	f, err := parse(src)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", src, err)}
	}
	opcodes := opcodeConsts(f)
	if len(opcodes) == 0 {
		return []string{fmt.Sprintf("%s: no op* opcode constants found", src)}
	}
	handled := execCases(f)
	if handled == nil {
		return []string{fmt.Sprintf("%s: Machine.exec `switch in.op` not found", src)}
	}
	var out []string
	for _, op := range sorted(opcodes) {
		if !handled[op] {
			out = append(out, fmt.Sprintf("%s: opcode %s has no case in Machine.exec's switch in.op (the dispatch loop would hit the unknown-opcode path)", src, op))
		}
	}
	for _, op := range sorted(handled) {
		if !opcodes[op] {
			out = append(out, fmt.Sprintf("%s: Machine.exec case %s matches no declared op* constant", src, op))
		}
	}
	return out
}

// structFields returns the named field set of a struct type declaration.
func structFields(f *ast.File, name string) map[string]bool {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || ts.Name.Name != name {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return nil
			}
			fields := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, n := range fld.Names {
					fields[n.Name] = true
				}
			}
			return fields
		}
	}
	return nil
}

// mapKeys returns the string keys of a package-level map composite literal.
func mapKeys(f *ast.File, varName string) map[string]bool {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, n := range vs.Names {
				if n.Name != varName || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					return nil
				}
				keys := make(map[string]bool)
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
						keys[lit.Value[1:len(lit.Value)-1]] = true
					}
				}
				return keys
			}
		}
	}
	return nil
}

// opcodeConsts returns every op*-named constant, excluding boundary markers
// whose value is a bare alias of another op* constant (e.g. opColdBase).
func opcodeConsts(f *ast.File) map[string]bool {
	ops := make(map[string]bool)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, n := range vs.Names {
				if len(n.Name) < 3 || n.Name[:2] != "op" || n.Name[2] < 'A' || n.Name[2] > 'Z' {
					continue
				}
				if i < len(vs.Values) {
					if id, ok := vs.Values[i].(*ast.Ident); ok && len(id.Name) > 2 && id.Name[:2] == "op" {
						continue // boundary marker aliasing a real opcode
					}
				}
				ops[n.Name] = true
			}
		}
	}
	return ops
}

// execCases returns the op* identifiers appearing as case expressions in
// the `switch in.op` statement inside Machine.exec, or nil if not found.
func execCases(f *ast.File) map[string]bool {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "exec" || fd.Recv == nil {
			continue
		}
		var cases map[string]bool
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || cases != nil {
				return cases == nil
			}
			sel, ok := sw.Tag.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "op" {
				return true
			}
			cases = make(map[string]bool)
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if id, ok := e.(*ast.Ident); ok {
						cases[id.Name] = true
					}
				}
			}
			return false
		})
		if cases != nil {
			return cases
		}
	}
	return nil
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
