// Command diode-worker is the worker-process half of the dispatch layer's
// Exec backend — the paper's §4 work-queue worker. It reads one JSON job per
// line from stdin (dispatch.Job: a hunt, a same-path experiment or a
// success-rate experiment, each carrying application, site, derived seed and
// the engine-options subset), executes them sequentially, and writes one JSON
// message per line to stdout: interleaved progress events plus exactly one
// result per job. Process-level parallelism is the parent's job — it spawns
// one worker per shard.
//
// The worker is stateless across invocations and derives everything (analysis
// targets, enforced constraints) deterministically from the job records, so
// any worker on any machine produces byte-identical results for the same
// batch.
//
// Usage:
//
//	diode-worker < jobs.jsonl > results.jsonl
//	diode-worker -discover
//
// -discover bypasses the job loop: the worker prints one JSON line per known
// application carrying its statically discovered sites and the discovery
// version, then exits. Dispatch parents use it to confirm a worker binary's
// discovery pass agrees with their own before sharding jobs to it.
//
// A SIGINT/SIGTERM cancels the in-flight job at its next cancellation point
// and exits non-zero; results already written remain valid.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"diode"
	"diode/internal/dispatch"
)

func main() {
	envCfg := dispatch.WorkerConfigFromEnv()
	cacheDir := flag.String("cache-dir", envCfg.CacheDir,
		"shared on-disk result cache directory (also $"+dispatch.WorkerCacheDirEnv+"); empty = memory only")
	noCache := flag.Bool("no-cache", envCfg.NoCache,
		"disable result caching (also $"+dispatch.WorkerNoCacheEnv+"=1)")
	discoverMode := flag.Bool("discover", false,
		"print one JSON line per application with its discovered sites, then exit")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "diode-worker: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *discoverMode {
		enc := json.NewEncoder(os.Stdout)
		for _, app := range diode.Applications() {
			sites, err := app.Discovered()
			if err != nil {
				fmt.Fprintf(os.Stderr, "diode-worker: %s: %v\n", app.Short, err)
				os.Exit(1)
			}
			rec := struct {
				App             string                 `json:"app"`
				DiscoverVersion string                 `json:"discoverVersion"`
				Sites           []diode.DiscoveredSite `json:"sites"`
			}{app.Short, diode.DiscoverVersion, sites}
			if err := enc.Encode(&rec); err != nil {
				fmt.Fprintln(os.Stderr, "diode-worker:", err)
				os.Exit(1)
			}
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := dispatch.WorkerConfig{CacheDir: *cacheDir, NoCache: *noCache}
	if err := dispatch.WorkerMain(ctx, os.Stdin, os.Stdout, cfg); err != nil {
		if !errors.Is(err, ctx.Err()) || ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "diode-worker:", err)
		}
		os.Exit(1)
	}
}
