// Command diode-worker is the worker-process half of the dispatch layer's
// Exec backend — the paper's §4 work-queue worker. It reads one JSON job per
// line from stdin (dispatch.Job: a hunt, a same-path experiment or a
// success-rate experiment, each carrying application, site, derived seed and
// the engine-options subset), executes them sequentially, and writes one JSON
// message per line to stdout: interleaved progress events plus exactly one
// result per job. Process-level parallelism is the parent's job — it spawns
// one worker per shard.
//
// The worker is stateless across invocations and derives everything (analysis
// targets, enforced constraints) deterministically from the job records, so
// any worker on any machine produces byte-identical results for the same
// batch.
//
// Usage:
//
//	diode-worker < jobs.jsonl > results.jsonl
//
// A SIGINT/SIGTERM cancels the in-flight job at its next cancellation point
// and exits non-zero; results already written remain valid.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"diode/internal/dispatch"
)

func main() {
	envCfg := dispatch.WorkerConfigFromEnv()
	cacheDir := flag.String("cache-dir", envCfg.CacheDir,
		"shared on-disk result cache directory (also $"+dispatch.WorkerCacheDirEnv+"); empty = memory only")
	noCache := flag.Bool("no-cache", envCfg.NoCache,
		"disable result caching (also $"+dispatch.WorkerNoCacheEnv+"=1)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "diode-worker: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := dispatch.WorkerConfig{CacheDir: *cacheDir, NoCache: *noCache}
	if err := dispatch.WorkerMain(ctx, os.Stdin, os.Stdout, cfg); err != nil {
		if !errors.Is(err, ctx.Err()) || ctx.Err() == nil {
			fmt.Fprintln(os.Stderr, "diode-worker:", err)
		}
		os.Exit(1)
	}
}
