package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSweepWarmVsCold \t 1\t 837294692 ns/op\t 1316 cold-vs-warm\t 0.6344 warm-ms", "diode")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "SweepWarmVsCold" || b.N != 1 || b.Pkg != "diode" {
		t.Fatalf("parsed %+v", b)
	}
	want := map[string]float64{"ns/op": 837294692, "cold-vs-warm": 1316, "warm-ms": 0.6344}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

// TestParseLineSignedMetric pins negative metric values: delta-us/job is an
// honestly signed delta (dispatch minus direct), so a scheduling-noise
// negative must survive parsing rather than be rejected or clamped.
func TestParseLineSignedMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkDispatchLocal \t 2\t 5124833 ns/op\t -42.70 delta-us/job", "diode")
	if !ok {
		t.Fatal("line did not parse")
	}
	if got := b.Metrics["delta-us/job"]; got != -42.70 {
		t.Fatalf("delta-us/job = %v, want -42.70", got)
	}
}

func TestParseLineSubBenchAndProcs(t *testing.T) {
	b, ok := parseLine("BenchmarkSuccessRateTargetOnly/vlc-8   5   123456 ns/op", "diode")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "SuccessRateTargetOnly/vlc" || b.Procs != 8 || b.N != 5 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestParseLineRejectsChatter(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tdiode\t0.937s",
		"",
		"BenchmarkBroken 1 not-a-number ns/op",
		"BenchmarkOdd 1 12 ns/op trailing",
	} {
		if _, ok := parseLine(line, ""); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}
