// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark runs as
// artifacts and tooling can diff metrics across commits without scraping the
// human-oriented format.
//
// It reads the benchmark output on stdin and writes one JSON object:
// environment headers (goos, goarch, cpu), then one entry per benchmark
// line with the iteration count and every reported metric — the standard
// ns/op, B/op, allocs/op and all custom b.ReportMetric units (such as this
// repository's cold-vs-warm, dispatch-vs-direct and speedup metrics).
// Benchmark names keep their sub-benchmark path but drop the trailing
// -GOMAXPROCS suffix, which is reported separately.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . > bench.txt
//	benchjson -o bench.json < bench.txt
//
// A FAIL marker in the input (a benchmark assertion tripped) makes benchjson
// exit non-zero after writing what it parsed, so pipelines cannot mistake a
// failed run for a clean artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// -GOMAXPROCS suffix; sub-benchmark paths are preserved.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 0 if the line carried none.
	Procs int `json:"procs,omitempty"`
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg,omitempty"`
	// N is the iteration count.
	N int64 `json:"n"`
	// Metrics maps unit → value for every reported metric (ns/op included).
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the whole document.
type Output struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark[^\s]*)\s+(\d+)\s+(.+)$`)
	procsTail = regexp.MustCompile(`-(\d+)$`)
)

// parseLine parses one benchmark result line, reporting ok=false for
// non-benchmark lines (headers, PASS/ok trailers, test chatter).
func parseLine(line, pkg string) (Bench, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Bench{}, false
	}
	n, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: strings.TrimPrefix(m[1], "Benchmark"), Pkg: pkg, N: n, Metrics: map[string]float64{}}
	// The -GOMAXPROCS suffix attaches to the last path segment only.
	if t := procsTail.FindStringSubmatch(b.Name); t != nil {
		if p, err := strconv.Atoi(t[1]); err == nil {
			b.Procs = p
			b.Name = strings.TrimSuffix(b.Name, t[0])
		}
	}
	fields := strings.Fields(m[3])
	if len(fields)%2 != 0 {
		return Bench{}, false
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: unexpected argument %q (input is read from stdin)\n", flag.Arg(0))
		os.Exit(2)
	}

	var doc Output
	var pkg string
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			failed = true
		default:
			if b, ok := parseLine(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: input contains FAIL — benchmark run was not clean")
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
}
