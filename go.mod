module diode

go 1.22
